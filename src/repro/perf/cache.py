"""Persistent, content-addressed run cache.

The paper's methodology records each application **once** and re-costs
the same trace under every machine model (Section 6.1).  This module
extends that record-once/re-cost-many loop across *processes*: a
recorded :class:`~repro.arch.trace.FrozenTrace` is serialized to a
compressed ``.npz`` (columns + Figure 14 length samples) next to a JSON
metadata sidecar, addressed by a SHA-256 fingerprint of everything that
determines the recording:

* the workload identity (app code / dataflow / kernel),
* the dataset *generator parameters* (not just its name — rescaling or
  reseeding a stand-in changes the key),
* the scale factor,
* :data:`CACHE_FORMAT_VERSION`.

Cost-model outputs are deliberately **not** cached: a hit re-prices the
stored trace under the current models, so model changes never serve
stale metrics — only the expensive per-op Python recording is skipped.

The cache root comes from ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro-sparsecore/runs``, ``$XDG_CACHE_HOME``-aware); setting
``REPRO_RUN_CACHE=0`` disables the default cache entirely.  Manage it
with ``python -m repro cache {stats,prewarm,clear}``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.arch.trace import _ARRAY_FIELDS, _SCALAR_FIELDS, FrozenTrace

#: Bump whenever the trace layout, recording semantics, or key schema
#: change in a way that invalidates previously stored runs.  v2:
#: spec-derived fingerprints from the unified workload pipeline
#: (:func:`repro.workloads.run_fingerprint`) replaced the per-family
#: key builders.
CACHE_FORMAT_VERSION = 2

#: Sidecar schema version (the JSON next to each ``.npz``).
SIDECAR_SCHEMA_VERSION = 1

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_ENABLE = "REPRO_RUN_CACHE"
_ENV_MEM_ENTRIES = "REPRO_RUN_CACHE_ENTRIES"

#: Default bound of the in-memory metrics LRU (:class:`LRUCache`).
DEFAULT_MEM_ENTRIES = 256


class LRUCache:
    """A small bounded LRU mapping (the in-memory metrics cache).

    ``capacity <= 0`` means unbounded (the pre-PR behaviour, kept for
    explicit opt-in); lookups refresh recency.
    """

    def __init__(self, capacity: int = DEFAULT_MEM_ENTRIES):
        self.capacity = int(capacity)
        self._data: OrderedDict = OrderedDict()

    def get(self, key, default=None):
        try:
            self._data.move_to_end(key)
        except KeyError:
            return default
        return self._data[key]

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        if self.capacity > 0:
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()

    def __contains__(self, key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"LRUCache({len(self._data)}/{self.capacity})"


def mem_cache_capacity() -> int:
    """Entry cap of the in-memory metrics LRU (env-configurable)."""
    try:
        return int(os.environ.get(_ENV_MEM_ENTRIES, DEFAULT_MEM_ENTRIES))
    except ValueError:
        return DEFAULT_MEM_ENTRIES


def fingerprint(kind: str, params: dict,
                version: int = CACHE_FORMAT_VERSION) -> str:
    """Content address of one run: hash of workload + generator params."""
    blob = json.dumps({"kind": kind, "params": params, "version": version},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


@dataclass
class CachedRun:
    """One disk-cache hit: the recorded trace plus run-level facts."""

    trace: FrozenTrace
    meta: dict
    lengths: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64))


def default_cache_dir() -> Path:
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-sparsecore" / "runs"


def cache_enabled() -> bool:
    return os.environ.get(_ENV_ENABLE, "1") not in ("0", "false", "off", "")


class RunCache:
    """Content-addressed on-disk store of recorded runs.

    Layout: ``<root>/<fingerprint>.npz`` (trace columns + lengths) and
    ``<root>/<fingerprint>.json`` (sidecar: key parameters and run
    facts such as the embedding count).  Writes are atomic
    (temp file + ``os.replace``), so concurrent workers racing on the
    same key simply last-write-win with identical bytes-equivalent
    content.
    """

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    # -- keys --------------------------------------------------------------

    def key(self, kind: str, params: dict) -> str:
        return fingerprint(kind, params)

    def _paths(self, key: str) -> tuple[Path, Path]:
        return self.root / f"{key}.npz", self.root / f"{key}.json"

    # -- read --------------------------------------------------------------

    def get(self, key: str) -> CachedRun | None:
        npz_path, json_path = self._paths(key)
        try:
            meta = json.loads(json_path.read_text())
            with np.load(npz_path) as data:
                scalars = data["scalars"]
                trace = FrozenTrace(
                    name=str(data["name"]),
                    **{f: data[f] for f in _ARRAY_FIELDS},
                    **{f: int(scalars[i])
                       for i, f in enumerate(_SCALAR_FIELDS)},
                )
                lengths = (np.asarray(data["lengths"], dtype=np.int64)
                           if "lengths" in data.files
                           else np.empty(0, dtype=np.int64))
        except (OSError, KeyError, ValueError, json.JSONDecodeError):
            return None  # missing or corrupt entry == miss
        if meta.get("format_version") != CACHE_FORMAT_VERSION:
            return None
        return CachedRun(trace=trace, meta=meta, lengths=lengths)

    def __contains__(self, key: str) -> bool:
        npz_path, json_path = self._paths(key)
        return npz_path.exists() and json_path.exists()

    # -- write -------------------------------------------------------------

    def put(self, key: str, trace: FrozenTrace, meta: dict,
            lengths: np.ndarray | None = None) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        npz_path, json_path = self._paths(key)
        sidecar = {
            "schema_version": SIDECAR_SCHEMA_VERSION,
            "format_version": CACHE_FORMAT_VERSION,
            "key": key,
            "num_ops": trace.num_ops,
            **meta,
        }
        extra = {}
        if lengths is not None:
            extra["lengths"] = np.asarray(lengths, dtype=np.int64)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                trace.save(fh, **extra)
            os.replace(tmp, npz_path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".json.tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(sidecar, fh, indent=1, sort_keys=True)
            os.replace(tmp, json_path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # -- maintenance -------------------------------------------------------

    def entries(self) -> list[dict]:
        """Sidecars of every cached run (sorted by key)."""
        if not self.root.is_dir():
            return []
        out = []
        for path in sorted(self.root.glob("*.json")):
            try:
                out.append(json.loads(path.read_text()))
            except (OSError, json.JSONDecodeError):
                continue
        return out

    def stats(self) -> dict:
        """Entry count and on-disk footprint."""
        entries = 0
        total_bytes = 0
        num_ops = 0
        if self.root.is_dir():
            for path in self.root.iterdir():
                if path.suffix == ".npz":
                    entries += 1
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    continue
            for meta in self.entries():
                num_ops += int(meta.get("num_ops", 0))
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "stream_ops": num_ops,
            "format_version": CACHE_FORMAT_VERSION,
        }

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.iterdir():
            if path.suffix in (".npz", ".json") or path.name.endswith(".tmp"):
                try:
                    path.unlink()
                    removed += path.suffix == ".npz"
                except OSError:
                    continue
        return removed

    def __repr__(self) -> str:
        return f"RunCache({str(self.root)!r})"


_DEFAULT_CACHE: RunCache | None = None
_DEFAULT_CACHE_READY = False


def default_run_cache() -> RunCache | None:
    """Process-wide default cache (``None`` when disabled by env)."""
    global _DEFAULT_CACHE, _DEFAULT_CACHE_READY
    if not _DEFAULT_CACHE_READY:
        _DEFAULT_CACHE = RunCache() if cache_enabled() else None
        _DEFAULT_CACHE_READY = True
    return _DEFAULT_CACHE


def reset_default_run_cache() -> None:
    """Forget the cached default (tests / env changes)."""
    global _DEFAULT_CACHE, _DEFAULT_CACHE_READY
    _DEFAULT_CACHE = None
    _DEFAULT_CACHE_READY = False


__all__ = [
    "CACHE_FORMAT_VERSION", "CachedRun", "LRUCache", "RunCache",
    "cache_enabled", "default_cache_dir", "default_run_cache",
    "fingerprint", "mem_cache_capacity", "reset_default_run_cache",
]
