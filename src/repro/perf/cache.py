"""Persistent, content-addressed run cache.

The paper's methodology records each application **once** and re-costs
the same trace under every machine model (Section 6.1).  This module
extends that record-once/re-cost-many loop across *processes*: a
recorded :class:`~repro.arch.trace.FrozenTrace` is serialized to a
compressed ``.npz`` (columns + Figure 14 length samples) next to a JSON
metadata sidecar, addressed by a SHA-256 fingerprint of everything that
determines the recording:

* the workload identity (app code / dataflow / kernel),
* the dataset *generator parameters* (not just its name — rescaling or
  reseeding a stand-in changes the key),
* the scale factor,
* :data:`CACHE_FORMAT_VERSION`.

Cost-model outputs are deliberately **not** cached: a hit re-prices the
stored trace under the current models, so model changes never serve
stale metrics — only the expensive per-op Python recording is skipped.

**Integrity.** Every sidecar stores a SHA-256 checksum of the payload
bytes, verified on read.  A damaged entry — truncated or bit-flipped
``.npz``, unparseable sidecar, checksum mismatch — is never served and
never crashes the reader: both files move to a ``quarantine/`` subdir
(with a ``.reason`` note) and the lookup reads as a miss, so the run
simply re-records.  Orphans (payload without sidecar or vice versa)
and stale-format entries are counted by :meth:`RunCache.stats` and
repaired by :meth:`RunCache.fsck` (``python -m repro cache fsck``).
Writes are atomic (temp file + ``os.replace``), so concurrent writers
racing on one key last-write-win with bytes-identical content, and a
reader never observes a half-written entry.

The cache root comes from ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro-sparsecore/runs``, ``$XDG_CACHE_HOME``-aware); setting
``REPRO_RUN_CACHE=0`` disables the default cache entirely.  Manage it
with ``python -m repro cache {stats,prewarm,fsck,clear}``.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import shutil
import tempfile
import zipfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.arch.trace import _ARRAY_FIELDS, _SCALAR_FIELDS, FrozenTrace
from repro.resilience.faults import InjectedOSError, corrupt_bytes, inject
from repro.resilience.knobs import env_int
from repro.resilience.metrics import RES_COUNTERS

#: Bump whenever the trace layout, recording semantics, or key schema
#: change in a way that invalidates previously stored runs.  v2:
#: spec-derived fingerprints from the unified workload pipeline
#: (:func:`repro.workloads.run_fingerprint`) replaced the per-family
#: key builders.  v3: the recording backend joined the fingerprint
#: params (:func:`repro.workloads.run_fingerprint` ``backend=``), so
#: rows/columnar entries can never alias; the ``.npz`` trace layout
#: itself is unchanged.  ``cache stats``/``fsck`` report a per-version
#: histogram so a bump shows up as counted stale entries rather than a
#: silent mass-miss.
CACHE_FORMAT_VERSION = 3

#: Sidecar schema version (the JSON next to each ``.npz``).  v2 added
#: the ``payload_sha256`` content checksum (v1 sidecars, which lack it,
#: are still readable — they just skip verification until re-recorded).
SIDECAR_SCHEMA_VERSION = 2

#: Subdirectory damaged entries are moved to (never deleted, never
#: re-served; ``cache clear`` empties it).
QUARANTINE_DIR = "quarantine"

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_ENABLE = "REPRO_RUN_CACHE"
_ENV_MEM_ENTRIES = "REPRO_RUN_CACHE_ENTRIES"

#: Default bound of the in-memory metrics LRU (:class:`LRUCache`).
DEFAULT_MEM_ENTRIES = 256

#: Exceptions that mean "this payload is not a valid trace archive".
_DECODE_ERRORS = (KeyError, ValueError, OSError, EOFError,
                  zipfile.BadZipFile)


class LRUCache:
    """A small bounded LRU mapping (the in-memory metrics cache).

    ``capacity <= 0`` means unbounded (the pre-PR behaviour, kept for
    explicit opt-in); lookups refresh recency.
    """

    def __init__(self, capacity: int = DEFAULT_MEM_ENTRIES):
        self.capacity = int(capacity)
        self._data: OrderedDict = OrderedDict()

    def get(self, key, default=None):
        try:
            self._data.move_to_end(key)
        except KeyError:
            return default
        return self._data[key]

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        if self.capacity > 0:
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()

    def __contains__(self, key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"LRUCache({len(self._data)}/{self.capacity})"


def mem_cache_capacity() -> int:
    """Entry cap of the in-memory metrics LRU (env-configurable).

    Validated centrally: non-numeric or negative values warn once and
    fall back to :data:`DEFAULT_MEM_ENTRIES` (0 means unbounded).
    """
    return env_int(_ENV_MEM_ENTRIES, DEFAULT_MEM_ENTRIES, minimum=0)


def fingerprint(kind: str, params: dict,
                version: int = CACHE_FORMAT_VERSION) -> str:
    """Content address of one run: hash of workload + generator params."""
    blob = json.dumps({"kind": kind, "params": params, "version": version},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


@dataclass
class CachedRun:
    """One disk-cache hit: the recorded trace plus run-level facts."""

    trace: FrozenTrace
    meta: dict
    lengths: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64))


@dataclass
class CacheScan:
    """One pass over the cache directory, nothing silently skipped."""

    entries: list[dict] = field(default_factory=list)
    entry_keys: list[str] = field(default_factory=list)
    #: sidecars that exist but do not parse as JSON
    corrupt_sidecars: list[Path] = field(default_factory=list)
    #: parseable sidecars whose ``.npz`` payload is missing
    orphan_sidecars: list[Path] = field(default_factory=list)
    #: ``.npz`` payloads with no sidecar
    orphan_payloads: list[Path] = field(default_factory=list)
    #: entry keys recorded under a different CACHE_FORMAT_VERSION
    stale: list[str] = field(default_factory=list)
    #: entry count per recorded ``format_version`` (sidecars without
    #: one — pre-v2 — count under ``"unversioned"``)
    format_versions: dict = field(default_factory=dict)
    #: distinct entries currently held in ``quarantine/``
    quarantined: int = 0
    #: leftover ``*.tmp`` files from interrupted writers
    tmp_files: int = 0

    @property
    def damaged(self) -> int:
        """Files/entries needing fsck attention (quarantine not counted)."""
        return (len(self.corrupt_sidecars) + len(self.orphan_sidecars)
                + len(self.orphan_payloads) + len(self.stale))


def default_cache_dir() -> Path:
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-sparsecore" / "runs"


def cache_enabled() -> bool:
    return os.environ.get(_ENV_ENABLE, "1") not in ("0", "false", "off", "")


class RunCache:
    """Content-addressed on-disk store of recorded runs.

    Layout: ``<root>/<fingerprint>.npz`` (trace columns + lengths),
    ``<root>/<fingerprint>.json`` (sidecar: key parameters, run facts,
    payload checksum), and ``<root>/quarantine/`` for damaged files.
    Reads verify the checksum and **never raise**: anything damaged is
    quarantined and reported as a miss; transient I/O errors are
    counted and reported as misses without quarantining.
    """

    def __init__(self, root: str | Path | None = None, *,
                 counters=None):
        self.root = Path(root) if root is not None else default_cache_dir()
        #: resilience counter sink (defaults to the process registry)
        self.counters = RES_COUNTERS if counters is None else counters

    # -- keys --------------------------------------------------------------

    def key(self, kind: str, params: dict) -> str:
        return fingerprint(kind, params)

    def _paths(self, key: str) -> tuple[Path, Path]:
        return self.root / f"{key}.npz", self.root / f"{key}.json"

    # -- quarantine --------------------------------------------------------

    def _quarantine_file(self, path: Path, reason: str) -> bool:
        """Move one damaged file aside; never raises."""
        qdir = self.root / QUARANTINE_DIR
        try:
            if not path.exists():
                return False
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
            (qdir / f"{path.stem}.reason").write_text(reason + "\n")
        except OSError:
            return False
        self.counters.inc("resilience.cache.quarantined_files")
        return True

    def _quarantine(self, key: str, reason: str) -> bool:
        """Move a damaged entry (payload + sidecar) into quarantine."""
        npz_path, json_path = self._paths(key)
        moved = self._quarantine_file(npz_path, reason)
        moved = self._quarantine_file(json_path, reason) or moved
        if moved:
            self.counters.inc("resilience.cache.quarantined")
        return moved

    # -- read --------------------------------------------------------------

    def get(self, key: str, *,
            ledger_attrs: dict | None = None) -> CachedRun | None:
        """Load one entry; corrupt entries quarantine and read as misses.

        With the run ledger enabled every lookup emits one
        ``cache.read`` span carrying the fingerprint, the wall time,
        and the outcome (``hit``/``miss``/``stale``/``quarantined``/
        ``error``); ``ledger_attrs`` adds caller context (workload,
        dataset).  The outcome never changes what is returned.
        """
        from repro.obs.spans import clock

        led = clock()
        if not led.enabled:
            return self._get(key)[0]
        t0 = led.start()
        run, outcome = self._get(key)
        led.span("cache.read", t0, fp=key, outcome=outcome,
                 **(ledger_attrs or {}))
        return run

    def _get(self, key: str) -> tuple[CachedRun | None, str]:
        """The lookup itself; returns ``(entry or None, outcome)``."""
        npz_path, json_path = self._paths(key)
        counters = self.counters
        try:
            point = inject("cache.read", key)
        except InjectedOSError:
            counters.inc("resilience.cache.read_errors")
            return None, "error"
        try:
            raw_meta = json_path.read_text()
        except FileNotFoundError:
            return None, "miss"
        except OSError:
            counters.inc("resilience.cache.read_errors")
            return None, "error"
        try:
            meta = json.loads(raw_meta)
        except json.JSONDecodeError:
            self._quarantine(key, "sidecar is not valid JSON")
            return None, "quarantined"
        try:
            payload = npz_path.read_bytes()
        except FileNotFoundError:
            self._quarantine(key, "payload .npz missing (orphan sidecar)")
            return None, "quarantined"
        except OSError:
            counters.inc("resilience.cache.read_errors")
            return None, "error"
        if point is not None and point.kind == "corrupt":
            payload = corrupt_bytes(payload)  # simulated bit rot on read
        want = meta.get("payload_sha256")
        if want is not None \
                and hashlib.sha256(payload).hexdigest() != want:
            counters.inc("resilience.cache.checksum_mismatch")
            self._quarantine(key, "payload checksum mismatch")
            return None, "quarantined"
        try:
            with np.load(io.BytesIO(payload)) as data:
                scalars = data["scalars"]
                trace = FrozenTrace(
                    name=str(data["name"]),
                    **{f: data[f] for f in _ARRAY_FIELDS},
                    **{f: int(scalars[i])
                       for i, f in enumerate(_SCALAR_FIELDS)},
                )
                lengths = (np.asarray(data["lengths"], dtype=np.int64)
                           if "lengths" in data.files
                           else np.empty(0, dtype=np.int64))
        except _DECODE_ERRORS:
            self._quarantine(key, "payload is not a decodable trace "
                                  "archive")
            return None, "quarantined"
        if meta.get("format_version") != CACHE_FORMAT_VERSION:
            # stale but intact: miss (fsck quarantines these)
            return None, "stale"
        return CachedRun(trace=trace, meta=meta, lengths=lengths), "hit"

    def __contains__(self, key: str) -> bool:
        npz_path, json_path = self._paths(key)
        return npz_path.exists() and json_path.exists()

    # -- write -------------------------------------------------------------

    def put(self, key: str, trace: FrozenTrace, meta: dict,
            lengths: np.ndarray | None = None) -> bool:
        """Store one entry; returns False on (tolerated) write failure.

        A cache write failure is never fatal — the caller already holds
        the freshly recorded trace, so the run degrades to uncached.
        With the ledger enabled each store emits one ``cache.write``
        span (fingerprint, wall time, ``ok``/``error`` outcome).
        """
        from repro.obs.spans import clock

        led = clock()
        if not led.enabled:
            return self._put(key, trace, meta, lengths)
        t0 = led.start()
        ok = self._put(key, trace, meta, lengths)
        led.span("cache.write", t0, fp=key,
                 outcome="ok" if ok else "error",
                 workload=meta.get("workload"),
                 dataset=meta.get("dataset"))
        return ok

    def _put(self, key: str, trace: FrozenTrace, meta: dict,
             lengths: np.ndarray | None = None) -> bool:
        counters = self.counters
        try:
            point = inject("cache.write", key)
        except InjectedOSError:
            counters.inc("resilience.cache.write_errors")
            return False
        extra = {}
        if lengths is not None:
            extra["lengths"] = np.asarray(lengths, dtype=np.int64)
        buf = io.BytesIO()
        trace.save(buf, **extra)
        payload = buf.getvalue()
        # Checksum the true bytes; injected corruption happens "after"
        # (bit rot on the way to disk) so verification catches it.
        digest = hashlib.sha256(payload).hexdigest()
        if point is not None and point.kind == "corrupt":
            payload = corrupt_bytes(payload)
            counters.inc("resilience.cache.corrupt_writes")
        sidecar = {
            "schema_version": SIDECAR_SCHEMA_VERSION,
            "format_version": CACHE_FORMAT_VERSION,
            "key": key,
            "num_ops": trace.num_ops,
            "payload_sha256": digest,
            **meta,
        }
        npz_path, json_path = self._paths(key)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self._write_atomic(npz_path, payload, ".npz.tmp")
            self._write_atomic(
                json_path,
                json.dumps(sidecar, indent=1, sort_keys=True).encode(),
                ".json.tmp")
        except OSError:
            counters.inc("resilience.cache.write_errors")
            return False
        return True

    def _write_atomic(self, dest: Path, data: bytes, suffix: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=suffix)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, dest)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # -- maintenance -------------------------------------------------------

    def scan(self) -> CacheScan:
        """Inventory the cache directory, counting every anomaly."""
        scan = CacheScan()
        if not self.root.is_dir():
            return scan
        payloads = {p.stem: p for p in self.root.glob("*.npz")}
        claimed: set[str] = set()
        for path in sorted(self.root.glob("*.json")):
            try:
                meta = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                scan.corrupt_sidecars.append(path)
                continue
            if path.stem not in payloads:
                scan.orphan_sidecars.append(path)
                continue
            claimed.add(path.stem)
            scan.entries.append(meta)
            scan.entry_keys.append(path.stem)
            version = meta.get("format_version")
            label = "unversioned" if version is None else f"v{version}"
            scan.format_versions[label] = \
                scan.format_versions.get(label, 0) + 1
            if version != CACHE_FORMAT_VERSION:
                scan.stale.append(path.stem)
        scan.orphan_payloads = [p for stem, p in sorted(payloads.items())
                                if stem not in claimed]
        scan.tmp_files = sum(1 for p in self.root.iterdir()
                             if p.name.endswith(".tmp"))
        qdir = self.root / QUARANTINE_DIR
        if qdir.is_dir():
            scan.quarantined = len({p.stem for p in qdir.iterdir()
                                    if p.suffix in (".npz", ".json")})
        return scan

    def entries(self) -> list[dict]:
        """Sidecars of every intact cached run (sorted by key).

        Anomalies are *not* silently skipped — they are counted by
        :meth:`scan`/:meth:`stats` and repaired by :meth:`fsck`.
        """
        return self.scan().entries

    def stats(self) -> dict:
        """Entry count, on-disk footprint, and anomaly counts."""
        scan = self.scan()
        total_bytes = 0
        if self.root.is_dir():
            for path in self.root.iterdir():
                try:
                    if path.is_file():
                        total_bytes += path.stat().st_size
                except OSError:
                    continue
        return {
            "root": str(self.root),
            "entries": len(scan.entries),
            "bytes": total_bytes,
            "stream_ops": sum(int(m.get("num_ops", 0))
                              for m in scan.entries),
            "format_version": CACHE_FORMAT_VERSION,
            "format_versions": dict(sorted(scan.format_versions.items())),
            "stale_entries": len(scan.stale),
            "corrupt_sidecars": len(scan.corrupt_sidecars),
            "orphan_sidecars": len(scan.orphan_sidecars),
            "orphan_payloads": len(scan.orphan_payloads),
            "quarantined": scan.quarantined,
            "tmp_files": scan.tmp_files,
        }

    def fsck(self, *, strict: bool = False) -> dict:
        """Verify every entry end-to-end; quarantine whatever fails.

        Deep check: each intact-looking entry is fully loaded and its
        checksum verified (via :meth:`get`, which quarantines on
        corruption).  Orphans, unparseable sidecars, and stale-format
        entries are quarantined too.  With ``strict=True`` a repair
        raises :class:`~repro.errors.CacheCorruptionError` after
        completing, for CI gates.
        """
        from repro.errors import CacheCorruptionError

        scan = self.scan()
        quarantined = 0
        for path in scan.corrupt_sidecars:
            quarantined += self._quarantine_file(
                path, "fsck: sidecar is not valid JSON")
        for path in scan.orphan_sidecars:
            quarantined += self._quarantine_file(
                path, "fsck: sidecar without payload")
        for path in scan.orphan_payloads:
            quarantined += self._quarantine_file(
                path, "fsck: payload without sidecar")
        stale = set(scan.stale)
        checked = ok = corrupt = 0
        for key in scan.entry_keys:
            checked += 1
            if key in stale:
                self._quarantine(key, "fsck: stale format_version")
                quarantined += 1
                continue
            if self.get(key) is None:  # quarantines internally
                corrupt += 1
                quarantined += 1
            else:
                ok += 1
        report = {
            "root": str(self.root),
            "checked": checked,
            "ok": ok,
            "corrupt": corrupt + len(scan.corrupt_sidecars),
            "stale": len(scan.stale),
            "format_versions": dict(sorted(scan.format_versions.items())),
            "orphans": (len(scan.orphan_sidecars)
                        + len(scan.orphan_payloads)),
            "quarantined": quarantined,
        }
        if strict and quarantined:
            raise CacheCorruptionError(
                f"cache fsck quarantined {quarantined} damaged "
                f"file(s)/entr(y|ies) under {self.root}")
        return report

    def clear(self) -> int:
        """Delete every cache entry (quarantine and leftover temp files
        included); returns the number of entries removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.iterdir():
            if path.is_dir() and path.name == QUARANTINE_DIR:
                shutil.rmtree(path, ignore_errors=True)
                continue
            if path.suffix in (".npz", ".json") or path.name.endswith(".tmp"):
                try:
                    path.unlink()
                    removed += path.suffix == ".npz"
                except OSError:
                    continue
        return removed

    def __repr__(self) -> str:
        return f"RunCache({str(self.root)!r})"


_DEFAULT_CACHE: RunCache | None = None
_DEFAULT_CACHE_READY = False


def default_run_cache() -> RunCache | None:
    """Process-wide default cache (``None`` when disabled by env)."""
    global _DEFAULT_CACHE, _DEFAULT_CACHE_READY
    if not _DEFAULT_CACHE_READY:
        _DEFAULT_CACHE = RunCache() if cache_enabled() else None
        _DEFAULT_CACHE_READY = True
    return _DEFAULT_CACHE


def reset_default_run_cache() -> None:
    """Forget the cached default (tests / env changes)."""
    global _DEFAULT_CACHE, _DEFAULT_CACHE_READY
    _DEFAULT_CACHE = None
    _DEFAULT_CACHE_READY = False


__all__ = [
    "CACHE_FORMAT_VERSION", "CacheScan", "CachedRun", "LRUCache",
    "QUARANTINE_DIR", "RunCache", "cache_enabled", "default_cache_dir",
    "default_run_cache", "fingerprint", "mem_cache_capacity",
    "reset_default_run_cache",
]
