"""Schema-aware benchmark comparison: ``python -m repro bench diff``.

Turns the committed ``BENCH_wallclock.json`` / ``BENCH_profile.json``
trajectories into a **gated regression signal**: given an old and a new
report the comparator classifies every shared numeric leaf, applies a
relative tolerance, and exits nonzero when the new report regressed —
so CI can diff the current commit's smoke run against the committed
baseline instead of letting the artifacts rot write-only.

Classification is by report kind and dotted key path:

* **time** (lower is better) — ``timings_s.*`` and the recording
  microbench ``rows_s``/``columnar_s`` in wallclock reports,
  ``workloads.*.wall_seconds`` in profile reports.  Regression when
  ``new > old * (1 + tolerance)``.
* **ratio** (higher is better) — ``speedups.*``, ``throughput.*``,
  ``recording.columnar_speedup`` and ``workloads.*.speedup_vs_cpu``.
  Regression when ``new < old * (1 - tolerance)``.  Ratio checks are
  only applied when both reports ran the same ``mode`` (a smoke run's
  warm/cold ratio is not comparable to a full run's).
* everything else is informational (cycles and counters are
  deterministic model outputs pinned by the golden tests, not wall
  time — drift there is reported but does not gate).

Exit codes: 0 = no regression, 1 = regression beyond tolerance,
2 = schema problem (unreadable file, mismatched kinds, or a gated key
present in the old report but missing from the new one).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: Default relative tolerance (wall time is noisy; ratios doubly so).
DEFAULT_TOLERANCE = 0.25

#: Exit statuses (also the ``BenchDiff.exit_code`` values).
EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_SCHEMA = 2


class BenchSchemaError(ValueError):
    """The reports cannot be compared (unknown or mismatched kinds)."""


def flatten(obj, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested report, keyed by dotted path."""
    out: dict[str, float] = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            out.update(flatten(value, f"{prefix}{key}."))
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix[:-1]] = float(obj)
    return out


def detect_kind(report: dict) -> str:
    """``"wallclock"`` or ``"profile"``; raises on anything else."""
    if not isinstance(report, dict):
        raise BenchSchemaError("report is not a JSON object")
    if "timings_s" in report:
        return "wallclock"
    if "workloads" in report:
        return "profile"
    raise BenchSchemaError(
        "unrecognized benchmark report (expected BENCH_wallclock.json "
        "with 'timings_s' or BENCH_profile.json with 'workloads')")


def classify(kind: str, path: str) -> str:
    """``"time"`` (lower better), ``"ratio"`` (higher better), ``"info"``."""
    if kind == "wallclock":
        if path.startswith("timings_s.") \
                or path in ("recording.rows_s", "recording.columnar_s",
                            "ledger.cold_serial_ledger_s"):
            return "time"
        if path.startswith(("speedups.", "throughput.")) \
                or path == "recording.columnar_speedup" \
                or path.startswith("recording.ops_per_s"):
            return "ratio"
        return "info"
    if path.endswith(".wall_seconds"):
        return "time"
    if path.endswith(".speedup_vs_cpu"):
        return "ratio"
    return "info"


@dataclass
class BenchDelta:
    """One compared leaf."""

    path: str
    kind: str  # time | ratio | info
    old: float
    new: float
    #: relative change ``(new - old) / old`` (None when old == 0)
    change: float | None
    status: str  # ok | regression | improved | drift


@dataclass
class BenchDiff:
    """Outcome of one report comparison."""

    kind: str
    tolerance: float
    same_mode: bool
    deltas: list[BenchDelta] = field(default_factory=list)
    #: gated (time/ratio) keys in the old report absent from the new
    missing: list[str] = field(default_factory=list)
    #: checks skipped because the reports ran different modes
    skipped_ratio_keys: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    @property
    def exit_code(self) -> int:
        if self.missing:
            return EXIT_SCHEMA
        return EXIT_REGRESSION if self.regressions else EXIT_OK

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "tolerance": self.tolerance,
            "same_mode": self.same_mode,
            "ok": self.ok,
            "exit_code": self.exit_code,
            "regressions": [vars(d) for d in self.regressions],
            "missing_keys": list(self.missing),
            "skipped_ratio_keys": list(self.skipped_ratio_keys),
            "compared": len(self.deltas),
            "deltas": [vars(d) for d in self.deltas
                       if d.status != "ok"],
        }

    def render(self) -> str:
        lines = [f"bench diff ({self.kind}, tolerance "
                 f"{self.tolerance:.0%}, "
                 f"{'same' if self.same_mode else 'DIFFERENT'} mode): "
                 f"{len(self.deltas)} leaves compared"]
        for delta in self.deltas:
            if delta.status == "ok":
                continue
            pct = f"{delta.change:+.1%}" if delta.change is not None \
                else "n/a"
            lines.append(f"  {delta.status.upper():10s} {delta.path}: "
                         f"{delta.old:g} -> {delta.new:g} ({pct}, "
                         f"{delta.kind})")
        for path in self.missing:
            lines.append(f"  MISSING    {path}: present in old report, "
                         f"absent from new")
        if self.skipped_ratio_keys:
            lines.append(f"  (skipped {len(self.skipped_ratio_keys)} "
                         f"ratio check(s): reports ran different modes)")
        lines.append(f"verdict: "
                     f"{'OK' if self.ok else 'REGRESSION' if self.regressions else 'SCHEMA'}"
                     + (f" ({len(self.regressions)} regression(s))"
                        if self.regressions else ""))
        return "\n".join(lines)


def diff_reports(old: dict, new: dict, *,
                 tolerance: float = DEFAULT_TOLERANCE) -> BenchDiff:
    """Compare two benchmark reports of the same kind.

    Every gated key of the *old* report must exist in the new one
    (missing keys are a schema failure — a silently dropped phase must
    not read as "no regression"); keys new to the new report are fine.
    """
    kind = detect_kind(old)
    if detect_kind(new) != kind:
        raise BenchSchemaError(
            f"cannot compare a {kind} report against a "
            f"{detect_kind(new)} report")
    same_mode = old.get("mode") == new.get("mode")
    old_flat, new_flat = flatten(old), flatten(new)
    diff = BenchDiff(kind=kind, tolerance=float(tolerance),
                     same_mode=same_mode)
    for path, old_value in sorted(old_flat.items()):
        cls = classify(kind, path)
        if cls == "info":
            continue
        if cls == "ratio" and not same_mode:
            diff.skipped_ratio_keys.append(path)
            continue
        if path not in new_flat:
            diff.missing.append(path)
            continue
        new_value = new_flat[path]
        change = (new_value - old_value) / old_value if old_value else None
        if cls == "time":
            regressed = new_value > old_value * (1.0 + diff.tolerance)
            improved = new_value < old_value * (1.0 - diff.tolerance)
        else:
            regressed = new_value < old_value * (1.0 - diff.tolerance)
            improved = new_value > old_value * (1.0 + diff.tolerance)
        status = ("regression" if regressed
                  else "improved" if improved else "ok")
        diff.deltas.append(BenchDelta(path=path, kind=cls, old=old_value,
                                      new=new_value, change=change,
                                      status=status))
    # Informational drift: deterministic leaves that changed at all.
    if kind == "profile":
        for path, old_value in sorted(old_flat.items()):
            if classify(kind, path) != "info" or path not in new_flat:
                continue
            if new_flat[path] != old_value and not path.startswith(
                    ("schema_version", "machine.")):
                diff.deltas.append(BenchDelta(
                    path=path, kind="info", old=old_value,
                    new=new_flat[path],
                    change=((new_flat[path] - old_value) / old_value
                            if old_value else None),
                    status="drift"))
    return diff


def load_report(path: str | Path) -> dict:
    """Read one benchmark JSON; raises :class:`BenchSchemaError`."""
    try:
        return json.loads(Path(path).read_text())
    except OSError as exc:
        raise BenchSchemaError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchSchemaError(f"{path} is not valid JSON: {exc}") from exc


def diff_files(old_path, new_path, *,
               tolerance: float = DEFAULT_TOLERANCE) -> BenchDiff:
    """File-level entry point used by the CLI."""
    return diff_reports(load_report(old_path), load_report(new_path),
                        tolerance=tolerance)


__all__ = [
    "BenchDelta", "BenchDiff", "BenchSchemaError", "DEFAULT_TOLERANCE",
    "EXIT_OK", "EXIT_REGRESSION", "EXIT_SCHEMA", "classify",
    "detect_kind", "diff_files", "diff_reports", "flatten", "load_report",
]
