"""Parallel evaluation engine, hardened for partial failure.

Every figure run in the harness is embarrassingly parallel across
(workload, dataset, scale) jobs — each job records (or loads) one trace
and prices it under the current cost models, sharing no state with its
siblings beyond the content-addressed disk cache.  :func:`run_jobs`
fans a job list out over a ``ProcessPoolExecutor``; results come back
keyed by :func:`job_key` so callers get deterministic, order-independent
output, and per-worker :class:`~repro.obs.counters.Counters` snapshots
are merged into the parent **in job-list order** (not completion
order), keeping merged float totals bit-identical to a serial run.

**Fault tolerance.**  A single crashed worker used to raise
``BrokenProcessPool`` and abort the whole suite; now one bad job
degrades one result:

* per-job wall-clock **timeout** (``REPRO_JOB_TIMEOUT``; hung workers
  are killed and the pool rebuilt),
* bounded **retry** with deterministic exponential backoff
  (``REPRO_JOB_RETRIES`` x ``REPRO_RETRY_BACKOFF``),
* automatic **pool rebuild** on ``BrokenProcessPool`` (innocent
  casualties of a crashed sibling are resubmitted),
* per-job **inline fallback**: after pool retries are exhausted the job
  runs serially in the parent (where injected crash/hang faults are
  inert by construction),
* structured :class:`JobResult` / :class:`JobFailure` records via
  :func:`run_jobs_report`; :func:`run_jobs` returns partial results
  and only raises :class:`~repro.errors.ExecutionError` in ``strict``
  mode.

Because retries re-execute a deterministic recording and only the
*successful* attempt's counter snapshot is merged (still in job-list
order), metrics and merged counters stay bit-identical to a fault-free
run — the property ``python -m repro chaos`` asserts in CI.

Serial execution (``workers <= 1``) runs the same job function inline —
the parallel path differs only in process placement, never in results.
"""

from __future__ import annotations

import os
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.errors import ExecutionError, JobCrashError, JobTimeoutError
from repro.obs.counters import Counters
from repro.resilience import faults
from repro.resilience.knobs import env_float, env_int
from repro.resilience.metrics import RES_COUNTERS, merge_resilience

#: Job kinds understood by :func:`_execute_job`.
_KINDS = ("gpm", "spmspm", "tensor")

#: Documented defaults of the retry knobs (see docs/robustness.md).
DEFAULT_RETRIES = 2
DEFAULT_BACKOFF = 0.05

_ENV_WORKERS = "REPRO_WORKERS"
_ENV_RETRIES = "REPRO_JOB_RETRIES"
_ENV_TIMEOUT = "REPRO_JOB_TIMEOUT"
_ENV_BACKOFF = "REPRO_RETRY_BACKOFF"


def default_workers() -> int:
    """Default engine fan-out (``REPRO_WORKERS``, validated, >= 1)."""
    return env_int(_ENV_WORKERS, 1, minimum=1)


def default_retries() -> int:
    """Pool retries before inline fallback (``REPRO_JOB_RETRIES``)."""
    return env_int(_ENV_RETRIES, DEFAULT_RETRIES, minimum=0)


def default_timeout() -> float | None:
    """Per-job seconds (``REPRO_JOB_TIMEOUT``; 0/unset = no timeout)."""
    seconds = env_float(_ENV_TIMEOUT, 0.0, minimum=0.0)
    return seconds if seconds > 0 else None


def default_backoff() -> float:
    """Base retry backoff seconds (``REPRO_RETRY_BACKOFF``)."""
    return env_float(_ENV_BACKOFF, DEFAULT_BACKOFF, minimum=0.0)


@dataclass(frozen=True)
class RunJob:
    """One unit of parallel work: a workload on a dataset at a scale.

    ``kind`` selects the runner: ``"gpm"`` (``app`` = app code,
    ``dataset`` = graph), ``"spmspm"`` (``app`` = dataflow, ``dataset``
    = matrix), or ``"tensor"`` (``app`` = ``ttv``/``ttm``, ``dataset``
    = CSF tensor).  ``config`` (a
    :class:`~repro.arch.config.MachineConfigs`; ``None`` = the
    ``paper`` preset) rides in the worker payload and selects the
    machine pair the job prices under — design-space sweeps submit one
    job per point, all re-pricing the same cached trace.
    """

    kind: str
    app: str
    dataset: str
    scale: float = 1.0
    config: object = None  # MachineConfigs | None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}; expected one of {_KINDS}")


def job_key(job: RunJob) -> str:
    """Stable human-readable identity of one job.

    Includes the config fingerprint for non-default configs, so two
    design points of the same (workload, dataset) never collide in the
    results dict; default-config keys are unchanged.
    """
    if job.kind == "gpm":
        key = f"gpm:{job.app}:{job.dataset}:{job.scale}"
    else:
        key = f"{job.kind}:{job.app}:{job.dataset}"
    if job.config is not None:
        key += f"@cfg={job.config.fingerprint()}"
    return key


def figure_suite_jobs(scale: float = 1.0, *, smoke: bool = False) -> list[RunJob]:
    """Every distinct run behind the Section 6 figure suite.

    Generated from the workload registry's figure tags
    (:data:`repro.workloads.FIGURES`) and deduplicated across figures
    (the per-pair heavy trims make the same (workload, dataset) pair
    appear at one effective scale).  ``smoke`` keeps only the small
    representative :data:`repro.workloads.SMOKE_SUITE` (CI prewarm).
    """
    from repro.workloads import figure_suite_runs

    jobs: dict[str, RunJob] = {}
    for spec, dataset, eff_scale in figure_suite_runs(scale, smoke=smoke):
        job = RunJob(spec.family, spec.app, dataset, eff_scale)
        jobs.setdefault(job_key(job), job)
    return list(jobs.values())


@dataclass
class JobFailure:
    """One job that failed even after retries and the inline fallback."""

    key: str
    error: str  # exception class name
    message: str
    attempts: int


@dataclass
class JobResult:
    """Outcome of one job: its metrics plus how hard it had to fight."""

    key: str
    metrics: dict | None
    attempts: int = 1
    inline: bool = False  # finished via the inline serial fallback
    failure: JobFailure | None = None
    #: harness wall-clock of the *successful* attempt (seconds, measured
    #: worker-side around the pipeline run; 0.0 for failed jobs)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class EngineReport:
    """Structured outcome of one :func:`run_jobs_report` call."""

    results: dict[str, dict] = field(default_factory=dict)
    jobs: dict[str, JobResult] = field(default_factory=dict)
    failures: list[JobFailure] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    pool_rebuilds: int = 0
    inline_fallbacks: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def slowest_jobs(self, n: int = 8) -> list[dict]:
        """The ``n`` slowest successful jobs, slowest first."""
        done = sorted((j for j in self.jobs.values() if j.ok),
                      key=lambda j: -j.wall_seconds)
        return [{"key": j.key, "wall_seconds": round(j.wall_seconds, 6),
                 "attempts": j.attempts, "inline": j.inline}
                for j in done[:max(0, n)]]


def _execute_job(payload) -> tuple[str, dict, dict | None, dict, float]:
    """Top-level (picklable) worker: run one job, return its metrics.

    ``payload`` is ``(job, cache_root, use_disk_cache, collect_counters,
    attempt, backend)`` — primitives only, so the same function serves
    the inline serial path and pool workers.  Returns the job key, its
    metrics, the optional workload-counter snapshot, the delta of
    resilience counters this job produced (merged parent-side), and the
    attempt's wall-clock seconds.
    """
    job, cache_root, use_disk_cache, collect_counters, attempt, backend = \
        payload
    from repro.obs.probe import Probe
    from repro.perf.cache import RunCache, default_run_cache
    from repro.workloads import run_workload, workload_for_app

    key = job_key(job)
    res_before = RES_COUNTERS.flat()
    faults.set_attempt(attempt)
    start = time.perf_counter()
    try:
        faults.inject("worker.exec", key)

        if not use_disk_cache:
            cache = None
        elif cache_root is not None:
            cache = RunCache(cache_root)
        else:
            cache = default_run_cache()
        probe = Probe(counters=Counters()) if collect_counters else None

        spec = workload_for_app(job.kind, job.app)
        metrics = run_workload(spec, job.dataset, job.scale,
                               cache=cache, probe=probe,
                               backend=backend, config=job.config).metrics
    finally:
        faults.set_attempt(0)
    wall = time.perf_counter() - start
    counters = probe.counters.flat() if collect_counters else None
    res_after = RES_COUNTERS.flat()
    res_delta = {name: value - res_before.get(name, 0)
                 for name, value in res_after.items()
                 if value != res_before.get(name, 0)}
    return key, metrics, counters, res_delta, wall


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even if a worker is hung (terminate, not join)."""
    procs = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for proc in procs:
        try:
            if proc.is_alive():
                proc.terminate()
        except Exception:
            pass


def run_jobs_report(jobs, *, workers: int = 1, cache_dir=None,
                    counters: Counters | None = None,
                    use_disk_cache: bool = True,
                    timeout: float | None = None,
                    retries: int | None = None,
                    backoff: float | None = None,
                    backend: str | None = None) -> EngineReport:
    """Execute ``jobs`` with retries/timeouts/fallbacks; full report.

    Duplicate jobs (same key) run once.  ``timeout``/``retries``/
    ``backoff`` default to their env knobs.  When ``counters`` is
    given, the snapshot of each job's *successful* attempt is merged
    into it in job-list order, so totals match a serial instrumented
    run exactly — retries never double-count.  No exception from a job
    escapes this function; failures land in ``report.failures``.
    ``backend`` selects the recording backend for every job (rides in
    the worker payload; job keys are backend-free because both backends
    produce identical metrics — the disk cache distinguishes them via
    the run fingerprint).
    """
    unique: dict[str, RunJob] = {}
    for job in jobs:
        unique.setdefault(job_key(job), job)
    ordered = list(unique.values())
    n = len(ordered)
    report = EngineReport()
    if n == 0:
        return report

    from repro.obs.spans import clock
    from repro.record import normalize_backend

    led = clock()
    engine_t0 = led.start()
    res_before = RES_COUNTERS.flat() if led.enabled else {}
    cache_root = os.fspath(cache_dir) if cache_dir is not None else None
    collect = counters is not None
    retries = default_retries() if retries is None else max(0, int(retries))
    timeout = default_timeout() if timeout is None \
        else (float(timeout) if timeout and timeout > 0 else None)
    backoff = default_backoff() if backoff is None else max(0.0, float(backoff))
    backend = normalize_backend(backend)

    def payload_for(i: int, attempt: int):
        return (ordered[i], cache_root, use_disk_cache, collect, attempt,
                backend)

    attempts = [0] * n  # failed attempts charged so far, per job
    inline = [False] * n
    outcomes: dict[int, tuple] = {}
    failures: dict[int, JobFailure] = {}

    def count(event: str, n_events: int = 1) -> None:
        RES_COUNTERS.inc(f"resilience.engine.{event}", n_events)

    def note_injected(exc: BaseException) -> None:
        # A worker-raised injected fault loses its worker-side counter
        # delta with the exception; reconstruct it parent-side.
        if isinstance(exc, faults.InjectedFault):
            site = getattr(exc, "site", "worker.exec")
            kind = getattr(exc, "kind", "oserror")
            RES_COUNTERS.inc(
                f"resilience.faults.injected.{site}.{kind}")

    def charge_retry(i: int, exc: BaseException) -> None:
        attempts[i] += 1
        note_injected(exc)
        report.retries += 1
        count("retries")
        led.instant("job.retry", key=job_key(ordered[i]),
                    attempt=attempts[i], error=type(exc).__name__)

    def fail(i: int, exc: BaseException) -> None:
        failure = JobFailure(key=job_key(ordered[i]),
                             error=type(exc).__name__,
                             message=str(exc),
                             attempts=attempts[i] + 1)
        failures[i] = failure
        report.failures.append(failure)
        count("failures")
        led.instant("job.failed", key=failure.key, error=failure.error,
                    attempts=failure.attempts)

    def run_inline(i: int) -> None:
        """One in-parent attempt (crash/hang faults are inert here)."""
        try:
            outcomes[i] = _execute_job(payload_for(i, attempts[i]))
        except Exception as exc:
            note_injected(exc)
            fail(i, exc)

    def go_inline(i: int) -> None:
        inline[i] = True
        report.inline_fallbacks += 1
        count("inline_fallbacks")
        led.instant("job.inline_fallback", key=job_key(ordered[i]),
                    attempt=attempts[i])
        run_inline(i)

    def sleep_backoff(i: int) -> None:
        if backoff and attempts[i]:
            time.sleep(backoff * 2 ** (attempts[i] - 1))

    if workers <= 1 or n == 1:
        # Serial path: same retry budget, everything inline.
        for i in range(n):
            led.instant("job.submit", key=job_key(ordered[i]),
                        attempt=attempts[i], lane="serial")
            while True:
                sleep_backoff(i)
                try:
                    outcomes[i] = _execute_job(payload_for(i, attempts[i]))
                    break
                except Exception as exc:
                    if attempts[i] >= retries:
                        note_injected(exc)
                        fail(i, exc)
                        break
                    charge_retry(i, exc)
    else:
        workers = min(workers, n)
        pending: deque[int] = deque(range(n))
        rebuilds_left = 2 * n + 4  # backstop against pathological plans
        pool = ProcessPoolExecutor(max_workers=workers,
                                   initializer=faults.mark_pool_worker)
        inflight: dict = {}  # future -> (job index, deadline or None)
        try:
            while pending or inflight:
                broken = False
                while pending and len(inflight) < workers:
                    i = pending.popleft()
                    if attempts[i] > retries:
                        go_inline(i)
                        continue
                    sleep_backoff(i)
                    try:
                        fut = pool.submit(_execute_job,
                                          payload_for(i, attempts[i]))
                    except BrokenProcessPool:
                        pending.appendleft(i)
                        broken = True
                        break
                    led.instant("job.submit", key=job_key(ordered[i]),
                                attempt=attempts[i], lane="pool")
                    deadline = (time.monotonic() + timeout
                                if timeout else None)
                    inflight[fut] = (i, deadline)
                if inflight and not broken:
                    done, _ = wait(set(inflight),
                                   timeout=0.05 if timeout else None,
                                   return_when=FIRST_COMPLETED)
                    for fut in done:
                        i, _deadline = inflight.pop(fut)
                        try:
                            outcomes[i] = fut.result()
                        except BrokenProcessPool:
                            broken = True
                            report.crashes += 1
                            count("crashes")
                            led.instant("job.crash",
                                        key=job_key(ordered[i]),
                                        attempt=attempts[i] + 1)
                            charge_retry(i, JobCrashError(
                                f"pool worker died while running "
                                f"{job_key(ordered[i])} "
                                f"(attempt {attempts[i] + 1})"))
                            pending.append(i)
                        except Exception as exc:
                            charge_retry(i, exc)
                            pending.append(i)
                    if timeout:
                        now = time.monotonic()
                        expired = [fut for fut, (i, dl) in inflight.items()
                                   if dl is not None and now >= dl]
                        for fut in expired:
                            i, _dl = inflight.pop(fut)
                            broken = True
                            report.timeouts += 1
                            count("timeouts")
                            led.instant("job.timeout",
                                        key=job_key(ordered[i]),
                                        attempt=attempts[i] + 1,
                                        timeout_s=timeout)
                            charge_retry(i, JobTimeoutError(
                                f"{job_key(ordered[i])} exceeded "
                                f"{timeout:.3g}s "
                                f"(attempt {attempts[i] + 1})"))
                            pending.append(i)
                if broken:
                    # Jobs still in flight are casualties of the kill,
                    # not culprits: requeue without charging an attempt.
                    for _fut, (i, _dl) in inflight.items():
                        pending.append(i)
                    inflight.clear()
                    _kill_pool(pool)
                    rebuilds_left -= 1
                    if rebuilds_left <= 0:
                        while pending:
                            go_inline(pending.popleft())
                        break
                    report.pool_rebuilds += 1
                    count("pool_rebuilds")
                    led.instant("engine.pool_rebuild",
                                rebuilds_left=rebuilds_left)
                    pool = ProcessPoolExecutor(
                        max_workers=workers,
                        initializer=faults.mark_pool_worker)
        finally:
            _kill_pool(pool)

    # Merge in job-list order == serial order, successes only.
    for i in range(n):
        key = job_key(ordered[i])
        if i in failures:
            report.jobs[key] = JobResult(key=key, metrics=None,
                                         attempts=failures[i].attempts,
                                         inline=inline[i],
                                         failure=failures[i])
            continue
        _key, metrics, flat, res_delta, wall = outcomes[i]
        report.results[key] = metrics
        report.jobs[key] = JobResult(key=key, metrics=metrics,
                                     attempts=attempts[i] + 1,
                                     inline=inline[i], wall_seconds=wall)
        led.span_of("job.done", wall, key=key, attempts=attempts[i] + 1,
                    inline=inline[i])
        if res_delta:
            merge_resilience(res_delta)
        if collect and flat:
            snap = Counters()
            for name, value in flat.items():
                snap.add(name, value)
            counters.merge(snap)
    if led.enabled:
        res_after = RES_COUNTERS.flat()
        res_delta = {name: value - res_before.get(name, 0)
                     for name, value in res_after.items()
                     if value != res_before.get(name, 0)}
        led.span("engine.run", engine_t0, jobs=n, workers=workers,
                 backend=backend, retries=report.retries,
                 timeouts=report.timeouts, crashes=report.crashes,
                 pool_rebuilds=report.pool_rebuilds,
                 inline_fallbacks=report.inline_fallbacks,
                 failures=len(report.failures), res=res_delta)
    return report


def run_jobs(jobs, *, workers: int = 1, cache_dir=None,
             counters: Counters | None = None,
             use_disk_cache: bool = True,
             timeout: float | None = None,
             retries: int | None = None,
             backoff: float | None = None,
             backend: str | None = None,
             strict: bool = False) -> dict[str, dict]:
    """Execute ``jobs``, serially or across ``workers`` processes.

    Returns ``{job_key: metrics}``.  Jobs that fail even after retries
    and the inline fallback are *omitted* from the result (with a
    ``RuntimeWarning``) unless ``strict=True``, which raises
    :class:`~repro.errors.ExecutionError` instead.  See
    :func:`run_jobs_report` for the structured per-job records.
    """
    report = run_jobs_report(jobs, workers=workers, cache_dir=cache_dir,
                             counters=counters,
                             use_disk_cache=use_disk_cache,
                             timeout=timeout, retries=retries,
                             backoff=backoff, backend=backend)
    if report.failures:
        summary = "; ".join(f"{f.key}: {f.error}: {f.message}"
                            for f in report.failures[:5])
        if strict:
            raise ExecutionError(
                f"{len(report.failures)} of {len(report.jobs)} job(s) "
                f"failed after retries: {summary}")
        warnings.warn(
            f"run_jobs degraded: {len(report.failures)} of "
            f"{len(report.jobs)} job(s) failed after retries: {summary}",
            RuntimeWarning, stacklevel=2)
    return report.results
