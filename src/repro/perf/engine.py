"""Parallel evaluation engine.

Every figure run in the harness is embarrassingly parallel across
(workload, dataset, scale) jobs — each job records (or loads) one trace
and prices it under the current cost models, sharing no state with its
siblings beyond the content-addressed disk cache.  :func:`run_jobs`
fans a job list out over a ``ProcessPoolExecutor``; results come back
keyed by :func:`job_key` so callers get deterministic, order-independent
output, and per-worker :class:`~repro.obs.counters.Counters` snapshots
are merged into the parent **in job-list order** (not completion
order), keeping merged float totals bit-identical to a serial run.

Serial execution (``workers <= 1``) runs the same job function inline —
the parallel path differs only in process placement, never in results.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.obs.counters import Counters

#: Job kinds understood by :func:`_execute_job`.
_KINDS = ("gpm", "spmspm", "tensor")


@dataclass(frozen=True)
class RunJob:
    """One unit of parallel work: a workload on a dataset at a scale.

    ``kind`` selects the runner: ``"gpm"`` (``app`` = app code,
    ``dataset`` = graph), ``"spmspm"`` (``app`` = dataflow, ``dataset``
    = matrix), or ``"tensor"`` (``app`` = ``ttv``/``ttm``, ``dataset``
    = CSF tensor).
    """

    kind: str
    app: str
    dataset: str
    scale: float = 1.0

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}; expected one of {_KINDS}")


def job_key(job: RunJob) -> str:
    """Stable human-readable identity of one job."""
    if job.kind == "gpm":
        return f"gpm:{job.app}:{job.dataset}:{job.scale}"
    return f"{job.kind}:{job.app}:{job.dataset}"


def figure_suite_jobs(scale: float = 1.0, *, smoke: bool = False) -> list[RunJob]:
    """Every distinct run behind the Section 6 figure suite.

    Generated from the workload registry's figure tags
    (:data:`repro.workloads.FIGURES`) and deduplicated across figures
    (the per-pair heavy trims make the same (workload, dataset) pair
    appear at one effective scale).  ``smoke`` keeps only the small
    representative :data:`repro.workloads.SMOKE_SUITE` (CI prewarm).
    """
    from repro.workloads import figure_suite_runs

    jobs: dict[str, RunJob] = {}
    for spec, dataset, eff_scale in figure_suite_runs(scale, smoke=smoke):
        job = RunJob(spec.family, spec.app, dataset, eff_scale)
        jobs.setdefault(job_key(job), job)
    return list(jobs.values())


def _execute_job(payload) -> tuple[str, dict, dict | None]:
    """Top-level (picklable) worker: run one job, return its metrics.

    ``payload`` is ``(job, cache_root, use_disk_cache, collect_counters)``
    — primitives only, so the same function serves the inline serial
    path and pool workers.
    """
    job, cache_root, use_disk_cache, collect_counters = payload
    from repro.obs.probe import Probe
    from repro.perf.cache import RunCache, default_run_cache
    from repro.workloads import run_workload, workload_for_app

    if not use_disk_cache:
        cache = None
    elif cache_root is not None:
        cache = RunCache(cache_root)
    else:
        cache = default_run_cache()
    probe = Probe(counters=Counters()) if collect_counters else None

    spec = workload_for_app(job.kind, job.app)
    metrics = run_workload(spec, job.dataset, job.scale,
                           cache=cache, probe=probe).metrics
    counters = probe.counters.flat() if collect_counters else None
    return job_key(job), metrics, counters


def run_jobs(jobs, *, workers: int = 1, cache_dir=None,
             counters: Counters | None = None,
             use_disk_cache: bool = True) -> dict[str, dict]:
    """Execute ``jobs``, serially or across ``workers`` processes.

    Returns ``{job_key: metrics}``.  Duplicate jobs (same key) run
    once.  When ``counters`` is given, each job runs under a fresh
    counter set and the snapshots are merged into ``counters`` in
    job-list order, so totals match a serial instrumented run exactly.
    The in-process metrics memo is bypassed (each job recomputes from
    its trace), keeping results independent of memo state.
    """
    unique: dict[str, RunJob] = {}
    for job in jobs:
        unique.setdefault(job_key(job), job)
    ordered = list(unique.values())
    cache_root = os.fspath(cache_dir) if cache_dir is not None else None
    collect = counters is not None
    payloads = [(job, cache_root, use_disk_cache, collect)
                for job in ordered]

    if workers <= 1 or len(ordered) <= 1:
        outcomes = [_execute_job(p) for p in payloads]
    else:
        with ProcessPoolExecutor(max_workers=min(workers,
                                                 len(ordered))) as pool:
            outcomes = list(pool.map(_execute_job, payloads))

    results: dict[str, dict] = {}
    for key, metrics, flat in outcomes:  # job-list order == merge order
        results[key] = metrics
        if collect and flat:
            snap = Counters()
            for name, value in flat.items():
                snap.add(name, value)
            counters.merge(snap)
    return results
