"""Performance layer: parallel run engine + persistent trace cache.

:mod:`repro.perf.cache` stores recorded traces on disk (content-
addressed by workload + dataset generator parameters) so warm runs only
re-price traces; :mod:`repro.perf.engine` fans independent (app,
dataset, scale) jobs out over worker processes and merges their
observability counters back deterministically.
"""

from repro.perf.cache import (
    CACHE_FORMAT_VERSION,
    CachedRun,
    LRUCache,
    RunCache,
    cache_enabled,
    default_cache_dir,
    default_run_cache,
    fingerprint,
    mem_cache_capacity,
    reset_default_run_cache,
)
from repro.perf.engine import (
    EngineReport,
    JobFailure,
    JobResult,
    RunJob,
    figure_suite_jobs,
    job_key,
    run_jobs,
    run_jobs_report,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CachedRun",
    "EngineReport",
    "JobFailure",
    "JobResult",
    "LRUCache",
    "RunCache",
    "RunJob",
    "cache_enabled",
    "default_cache_dir",
    "default_run_cache",
    "figure_suite_jobs",
    "fingerprint",
    "job_key",
    "mem_cache_capacity",
    "reset_default_run_cache",
    "run_jobs",
    "run_jobs_report",
]
