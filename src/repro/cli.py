"""Command-line interface: ``python -m repro <command>``.

Commands:

``datasets``
    List the graph/matrix/tensor stand-in registries with their stats.
``run <app> --graph <name>``
    Run a GPM application and print counts, cycles, speedup, breakdowns.
``pattern <name> --graph <name>``
    Compile an arbitrary library pattern; print the plan, the emitted
    stream assembly, and the run results.
``table <1|2|3|4|5>`` / ``figure <7|8|9|10|11|12|13|14|15|16>``
    Regenerate one table/figure of the paper and print it.
``spmspm --matrix <name> --dataflow <inner|outer|gustavson>``
    Run one spmspm dataflow and print its machine comparison.
``difftest [--cases N] [--seed S] [--smoke] [--family F] [--case-seed C]``
    Differential conformance sweep: fuzz the stream ISA across every
    backend (functional / pure-Python / stream-unit / machine /
    executor, plus the GPM and tensor stacks) and check cycle-model
    invariants.  ``--self-check`` proves the harness catches a planted
    off-by-one.  ``--json`` emits the machine-readable report.
``profile <workload...> [--jobs N] [--json] [--trace FILE] [--timeline]``
    Run GPM patterns or tensor kernels under the observability probe:
    hierarchical performance counters, five-bucket cycle attribution
    (checked against the cost model's total), harness wall-clock, and a
    Chrome trace-event export loadable in Perfetto (``--trace``).
    Several workloads fan out over ``--jobs`` worker processes;
    ``--smoke`` profiles the CI pair (triangle + spmspm) with all
    checks enforced.
``cache <stats|prewarm|fsck|clear> [--dir D] [--jobs N] [--scale S]``
    Manage the persistent run cache (recorded traces, content-addressed
    by workload + dataset generator parameters).  ``prewarm`` records
    every run behind the figure suite so subsequent figure/table
    commands only re-price cached traces.  ``fsck`` verifies every
    entry end-to-end (sidecar JSON, payload checksum, format version)
    and quarantines whatever fails; ``stats`` counts anomalies.
``chaos [--smoke] [--seed S] [--timeout T] [--jobs N]``
    Robustness gate: run the figure suite fault-free and again under a
    seeded fault plan (worker crashes, hangs, transient I/O errors,
    cache corruption) and assert metrics stay bit-identical, no job is
    lost, and the retry/fallback/quarantine counters are nonzero.  See
    docs/robustness.md.
``workloads [--list]``
    List the unified workload registry (name, family, app selector,
    dataset kind, figure membership) that ``run``/``spmspm``/
    ``profile``/``cache prewarm`` all resolve through.
``obs <report|trace> [--dir D] [--json] [--smoke]``
    Host-side telemetry from the persistent run ledger
    (``$REPRO_LEDGER_DIR``): ``report`` aggregates cache hit rate,
    per-stage p50/p99 wall time, retry/fallback totals, and
    per-workload tables (``--smoke`` is the CI gate: nonzero exit on an
    empty or malformed ledger); ``trace OUT.json`` renders the whole
    ledger as a Perfetto-loadable Chrome trace (one lane per process).
``explore <workload...> --axis FIELD=VALUES [--preset P] [--json]``
    Design-space sweep: expand one or more ``--axis`` specs
    (``num_sus=1,2,4,8,16``, ``scache_bandwidth=2..64``) into a grid of
    machine configurations around a named preset, record each workload
    once through the trace cache, price every (workload, point) pair
    through the parallel engine, and print cycles, modelled area, the
    area/cycles Pareto front, and per-axis sensitivity.  ``--smoke`` is
    the CI gate: a 2-point sweep whose base point must price
    bit-identically to the non-explore pipeline.
``bench diff OLD.json NEW.json [--tolerance T]``
    Schema-aware benchmark comparison over ``BENCH_wallclock.json`` /
    ``BENCH_profile.json``: flags wall-clock and speedup-ratio
    regressions beyond the tolerance; exit 1 on regression, 2 on a
    schema/missing-key problem — the CI regression gate.

Workloads and datasets resolve through :mod:`repro.workloads` on every
subcommand; unknown names exit with status 2 and a one-line message.
``run``/``spmspm``/``profile``/``cache prewarm`` accept ``--backend
{rows,columnar}`` to pick the recording backend (byte-identical traces;
columnar is faster on recording-bound workloads — see
docs/performance.md).
"""

from __future__ import annotations

import argparse
import sys


def _dataset_for_args(spec, args) -> str:
    """Resolve the per-kind dataset flags for one workload spec."""
    from repro.workloads import dataset_for

    return dataset_for(
        spec,
        graph=getattr(args, "graph", None),
        matrix=getattr(args, "matrix", None),
        tensor=getattr(args, "tensor", None),
    )


def _cmd_datasets(_args) -> int:
    from repro.eval.reporting import render
    from repro.graph.datasets import table4_rows
    from repro.tensor.datasets import table5_rows

    print(render(table4_rows(), "Graph stand-ins (Table 4)"))
    print()
    print(render(table5_rows(), "Matrix/tensor stand-ins (Table 5)"))
    return 0


def _cmd_run(args) -> int:
    from repro.arch import CpuModel, SparseCoreModel
    from repro.workloads import run_workload, workload_for_app

    spec = workload_for_app("gpm", args.app)
    dataset = _dataset_for_args(spec, args)
    rec = run_workload(spec, dataset, args.scale, cache=None, price=False,
                       backend=args.backend)
    print(f"graph: {rec.summary['graph']}")
    cpu = CpuModel().cost(rec.trace)
    sc = SparseCoreModel().cost(rec.trace)
    print(f"result: {rec.meta['count']}")
    print(f"stream ops: {rec.trace.num_ops}")
    print(f"cpu cycles:        {cpu.total_cycles:.4g}")
    print(f"sparsecore cycles: {sc.total_cycles:.4g}")
    print(f"speedup: {sc.speedup_over(cpu):.2f}x")
    print("cpu breakdown:       ", {k: round(v, 3)
                                    for k, v in cpu.breakdown().items()})
    print("sparsecore breakdown:", {k: round(v, 3)
                                    for k, v in sc.breakdown().items()})
    from repro.eval.reporting import render_cycle_reports

    print()
    print(render_cycle_reports([cpu, sc], "per-component cycles"))
    return 0


def _cmd_pattern(args) -> int:
    from repro.gpm.apps import _pattern_by_name
    from repro.gpm.compiler import compile_pattern
    from repro.graph.datasets import load_graph
    from repro.machine.context import Machine

    pattern = _pattern_by_name(args.pattern)
    compiled = compile_pattern(
        pattern,
        vertex_induced=not args.edge_induced,
        use_nested=not args.no_nested,
    )
    print(compiled.plan.describe())
    print("\nstream assembly:")
    print(str(compiled.assembly()))
    graph = load_graph(args.graph, args.scale)
    machine = Machine(name=pattern.name)
    count = compiled.count(graph, machine)
    print(f"\n{graph}")
    print(f"embeddings: {count}")
    from repro.arch import CpuModel, SparseCoreModel

    sc = SparseCoreModel().cost(machine.trace)
    cpu = CpuModel().cost(machine.trace)
    print(f"speedup vs CPU: {sc.speedup_over(cpu):.2f}x")
    return 0


def _cmd_table(args) -> int:
    from repro.eval import tables
    from repro.eval.reporting import render

    runners = {
        "1": (tables.table1_rows, "Table 1: Stream ISA"),
        "2": (tables.table2_rows, "Table 2: Architecture Configuration"),
        "3": (tables.table3_rows, "Table 3: GPM Apps"),
        "4": (tables.table4_rows, "Table 4: Graph Datasets"),
        "5": (tables.table5_rows, "Table 5: Matrix/Tensor Datasets"),
    }
    runner, title = runners[args.number]
    print(render(runner(), title))
    return 0


def _cmd_figure(args) -> int:
    from repro.eval import figures
    from repro.eval.reporting import render

    n = args.number
    if n == "7":
        rows = figures.fig07_rows(args.scale)
        print(render(rows, "Figure 7"))
        print("summary:", figures.fig07_summary(rows))
    elif n == "8":
        rows = figures.fig08_rows(args.scale)
        print(render(rows, "Figure 8"))
        print("summary:", figures.fig08_summary(rows))
    elif n == "9":
        print(render(figures.fig09_rows(args.scale), "Figure 9"))
    elif n == "10":
        print(render(figures.fig10_rows(args.scale), "Figure 10"))
    elif n == "11":
        print(render(figures.fig11_rows(args.scale), "Figure 11"))
    elif n == "12":
        print(render(figures.fig12_rows(args.scale), "Figure 12"))
    elif n == "13":
        print(render(figures.fig13_rows(args.scale), "Figure 13"))
    elif n == "14":
        print(render(figures.fig14_left_rows(args.scale),
                     "Figure 14 (left)"))
        print(render(figures.fig14_right_rows(args.scale),
                     "Figure 14 (right)"))
    elif n == "15":
        mrows = figures.fig15_matrix_rows()
        trows = figures.fig15_tensor_rows()
        print(render(mrows, "Figure 15(a)"))
        print(render(trows, "Figure 15(b)"))
        print("summary:", figures.fig15_summary(mrows, trows))
    elif n == "16":
        print(render(figures.fig16_rows(), "Figure 16"))
    return 0


def _cmd_spmspm(args) -> int:
    from repro.arch import CpuModel, SparseCoreModel
    from repro.workloads import run_workload, workload_for_app

    spec = workload_for_app("spmspm", args.dataflow)
    dataset = _dataset_for_args(spec, args)
    rec = run_workload(spec, dataset, cache=None, price=False,
                       backend=args.backend)
    print(f"matrix: {rec.summary['matrix']}")
    cpu = CpuModel().cost(rec.trace)
    sc = SparseCoreModel().cost(rec.trace)
    print(f"C: {rec.summary['C']}")
    print(f"speedup vs CPU: {sc.speedup_over(cpu):.2f}x")
    from repro.eval.reporting import render_cycle_reports

    print(render_cycle_reports([cpu, sc], "per-component cycles"))
    return 0


def _cmd_difftest(args) -> int:
    import json

    from repro.difftest import Sizes, run_one, run_sweep, self_check

    sizes = Sizes.smoke() if args.smoke else None

    if args.self_check:
        mismatch = self_check(root_seed=args.seed, sizes=sizes)
        print("self-check: planted off-by-one caught")
        print(mismatch.render())
        return 0

    if args.case_seed is not None:
        family = args.family or "stream"
        mismatch = run_one(family, args.case_seed, sizes)
        if mismatch is None:
            print("case agrees across all backends")
            return 0
        print(mismatch.render())
        return 1

    families = (args.family,) if args.family else None
    n_cases = 60 if args.smoke and args.cases == 200 else args.cases
    kwargs = {"families": families} if families else {}
    report = run_sweep(n_cases=n_cases, root_seed=args.seed,
                       sizes=sizes, **kwargs)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_profile(args) -> int:
    import json

    from repro.obs.profile import (
        ProfileArgs,
        profile_many,
        profile_workload,
        smoke,
        workload_names,
        write_chrome_trace,
    )

    pargs = ProfileArgs(graph=args.graph, matrix=args.matrix,
                        tensor=args.tensor, scale=args.scale,
                        max_events=args.max_events, backend=args.backend)

    if args.smoke:
        # CI pair: one GPM pattern + one SpMSpM kernel; the attribution
        # and trace-schema checks inside raise (non-zero exit) on
        # violation.
        for result in smoke(pargs):
            sc, cpu = result.sc_report, result.cpu_report
            print(f"profile --smoke {result.workload}: "
                  f"attribution ok ({result.attribution.attributed_cycles:.6g}"
                  f" == {sc.total_cycles:.6g} cycles), "
                  f"trace schema ok ({len(result.tracer.events)} events), "
                  f"speedup {sc.speedup_over(cpu):.2f}x, "
                  f"wall {result.wall_seconds:.3f}s")
        return 0

    if not args.workload:
        print("available workloads:")
        from repro.workloads import REGISTRY

        for spec in REGISTRY.values():
            print(f"  {spec.name:16s} [{spec.family}]  {spec.description}")
        return 0

    unknown = [w for w in args.workload if w not in workload_names()]
    if unknown:
        print(f"unknown workload {unknown[0]!r}; "
              f"known: {', '.join(workload_names())}")
        return 2

    if len(args.workload) > 1:
        # Multi-workload mode: fan out over --jobs worker processes and
        # print the cross-workload comparison (model cycles + the
        # harness wall-clock each profile cost).
        from repro.perf.engine import default_workers

        jobs = args.jobs if args.jobs is not None else default_workers()
        payloads = profile_many(args.workload, pargs, jobs=jobs)
        slowest = sorted(
            ({"key": p["workload"],
              "wall_seconds": round(p["wall_seconds"], 6)}
             for p in payloads),
            key=lambda r: -r["wall_seconds"])
        if args.json:
            print(json.dumps({"profiles": payloads,
                              "slowest_jobs": slowest}, indent=2))
            return 0
        from repro.eval.reporting import render

        rows = [{
            "workload": p["workload"],
            "sc_cycles": p["reports"]["sparsecore"]["total_cycles"],
            "cpu_cycles": p["reports"]["cpu"]["total_cycles"],
            "speedup": f"{p['speedup_vs_cpu']:.2f}x",
            "wall_s": f"{p['wall_seconds']:.3f}",
        } for p in payloads]
        print(render(rows, f"profiles ({jobs} job(s))"))
        print(render([{"workload": r["key"],
                       "wall_s": f"{r['wall_seconds']:.3f}"}
                      for r in slowest], "slowest profiles"))
        return 0

    result = profile_workload(args.workload[0], pargs)
    if args.trace:
        write_chrome_trace(result, args.trace)
    if args.json:
        print(json.dumps(result.to_json(), indent=2))
    else:
        print(result.render())
        if args.timeline:
            print()
            print(result.tracer.timeline())
        if args.trace:
            print(f"\nchrome trace written to {args.trace} "
                  f"(open at https://ui.perfetto.dev)")
    return 0


def _cmd_cache(args) -> int:
    import time

    from repro.eval.reporting import render
    from repro.perf.cache import RunCache, default_run_cache
    from repro.perf.engine import (
        default_workers,
        figure_suite_jobs,
        run_jobs_report,
    )

    cache = RunCache(args.dir) if args.dir else default_run_cache()
    if cache is None:
        print("run cache disabled (REPRO_RUN_CACHE=0); "
              "pass --dir to address one explicitly")
        return 2

    if args.action == "stats":
        stats = cache.stats()
        if args.json:
            import json

            payload = dict(stats)
            if args.verbose:
                payload["entry_list"] = cache.entries()
            print(json.dumps(payload, indent=2, default=str))
            return 0
        rows = [{"stat": k, "value": v} for k, v in stats.items()]
        print(render(rows, "run cache"))
        entries = cache.entries()
        if entries and args.verbose:
            print()
            print(render(
                [{"key": e.get("key", "?"), "kind": e.get("kind", "?"),
                  "fmt": f"v{e['format_version']}"
                         if "format_version" in e else "?",
                  "backend": e.get("backend", "?"),
                  "ops": e.get("num_ops", 0)} for e in entries],
                "entries"))
        return 0

    if args.action == "fsck":
        report = cache.fsck()
        if args.json:
            import json

            print(json.dumps(report, indent=2, default=str))
            return 0
        rows = [{"stat": k, "value": v} for k, v in report.items()]
        print(render(rows, "cache fsck"))
        if report["quarantined"]:
            print(f"quarantined {report['quarantined']} damaged "
                  f"file(s) under {cache.root}/quarantine")
        return 0

    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached run(s) from {cache.root}")
        return 0

    # prewarm: record (or refresh) every run behind the figure suite.
    jobs = figure_suite_jobs(args.scale, smoke=args.smoke)
    workers = args.jobs if args.jobs is not None else default_workers()
    start = time.perf_counter()
    report = run_jobs_report(jobs, workers=workers, cache_dir=cache.root,
                             backend=args.backend)
    wall = time.perf_counter() - start
    stats = cache.stats()
    print(f"prewarmed {len(report.results)} run(s) in {wall:.1f}s "
          f"({workers} worker(s)); cache now holds "
          f"{stats['entries']} entries / {stats['bytes'] / 1e6:.1f} MB "
          f"at {stats['root']}")
    if report.retries or report.inline_fallbacks:
        print(f"resilience: {report.retries} retr(y|ies), "
              f"{report.inline_fallbacks} inline fallback(s), "
              f"{report.pool_rebuilds} pool rebuild(s)")
    if report.failures:
        for failure in report.failures:
            print(f"FAILED {failure.key}: {failure.error}: "
                  f"{failure.message} ({failure.attempts} attempts)")
        return 1
    return 0


def _cmd_chaos(args) -> int:
    import json

    from repro.resilience.chaos import run_chaos

    report = run_chaos(smoke=args.smoke, scale=args.scale,
                       seed=args.seed, workers=args.jobs,
                       timeout=args.timeout, max_jobs=args.max_jobs)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_workloads(args) -> int:
    from repro.workloads import REGISTRY

    if args.list:
        for name in REGISTRY:
            print(name)
        return 0
    from repro.eval.reporting import render

    rows = [{
        "workload": spec.name,
        "family": spec.family,
        "app": spec.app,
        "datasets": f"{spec.dataset_kind} (default {spec.default_dataset})",
        "figures": ",".join(t.removeprefix("fig") for t in spec.figures)
                   or "-",
    } for spec in REGISTRY.values()]
    print(render(rows, "workload registry"))
    return 0


def _render_obs_report(agg: dict) -> str:
    from repro.eval.reporting import render

    span_s = agg["span"].get("wall_span_s", 0.0) if agg["span"] else 0.0
    lines = [f"run ledger: {agg['events']} event(s) across "
             f"{agg['files']} file(s) / {agg['processes']} process(es), "
             f"{agg['malformed']} malformed line(s), span {span_s:.2f}s"]
    if agg["stages"]:
        lines.append(render(
            [{"stage": name,
              "count": s["count"],
              "total_s": f"{s['total_s']:.3f}",
              "p50_s": f"{s['p50_s']:.4f}",
              "p99_s": f"{s['p99_s']:.4f}",
              "max_s": f"{s['max_s']:.4f}"}
             for name, s in agg["stages"].items()],
            "pipeline stages"))
    cache = agg["cache"]
    lines.append(
        f"cache: {cache['lookups']} lookup(s), hit rate "
        + (f"{cache['hit_rate']:.1%}" if cache["hit_rate"] is not None
           else "n/a")
        + f" (hits={cache['hits']} misses={cache['misses']} "
          f"stale={cache['stale']} quarantined={cache['quarantined']} "
          f"errors={cache['errors']}), {cache['writes']} write(s), "
          f"{cache['write_failures']} write failure(s)")
    eng = agg["engine"]
    lines.append(
        f"engine: {eng['engine_runs']} run(s), {eng['jobs_done']} job(s) "
        f"done, submits={eng['submits']} retries={eng['retries']} "
        f"timeouts={eng['timeouts']} crashes={eng['crashes']} "
        f"pool_rebuilds={eng['pool_rebuilds']} "
        f"inline_fallbacks={eng['inline_fallbacks']} "
        f"failures={eng['failures']}")
    if agg["slowest_jobs"]:
        lines.append(render(
            [{"job": r["key"],
              "wall_s": f"{r['wall_s']:.3f}",
              "attempts": r["attempts"],
              "inline": "yes" if r.get("inline") else "-"}
             for r in agg["slowest_jobs"]],
            "slowest jobs"))
    if agg["workloads"]:
        lines.append(render(
            [{"workload": name,
              "records": w["records"],
              "record_s": f"{w['record_s']:.3f}",
              "prices": w["prices"],
              "price_s": f"{w['price_s']:.3f}"}
             for name, w in agg["workloads"].items()],
            "per-workload stage time"))
    explore = agg.get("explore") or {}
    if explore.get("sweeps"):
        lines.append(
            f"explore: {explore['sweeps']} sweep(s), "
            f"{explore['points_priced']} point(s) priced across "
            f"{explore['workloads_swept']} workload(s), sweep cache "
            f"hit rate "
            + (f"{explore['hit_rate']:.1%}"
               if explore["hit_rate"] is not None else "n/a")
            + f" ({explore['hits']}/{explore['lookups']}), "
              f"{explore['sweep_s']:.2f}s in sweeps")
    res = agg["resilience"]
    if res["knob_warnings"]:
        lines.append(f"knob warnings: {res['knob_warnings']} "
                     f"({', '.join(sorted(res['knobs']))})")
    return "\n".join(lines)


def _cmd_obs(args) -> int:
    import json
    import os

    from repro.obs.ledger import (
        ENV_DIR,
        aggregate,
        ledger_to_chrome,
        read_ledger,
    )

    root = args.dir or os.environ.get(ENV_DIR)
    if not root:
        print(f"no ledger directory: pass --dir or set ${ENV_DIR}",
              file=sys.stderr)
        return 2
    scan = read_ledger(root)

    if args.action == "trace":
        from repro.obs.schema import validate_chrome_trace

        trace = ledger_to_chrome(scan)
        validate_chrome_trace(trace)
        out = args.out or "ledger_trace.json"
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(trace, fh, indent=2)
        print(f"chrome trace with {len(trace['traceEvents'])} event(s) "
              f"written to {out} (open at https://ui.perfetto.dev)")
        return 0

    agg = aggregate(scan, top=args.top)
    if args.json:
        print(json.dumps(agg, indent=2))
    else:
        print(_render_obs_report(agg))
    if args.smoke:
        # CI gate: the preceding instrumented run must actually have
        # left a readable trail.
        problems = []
        if agg["events"] == 0:
            problems.append("ledger is empty")
        if agg["malformed"]:
            problems.append(f"{agg['malformed']} malformed line(s)")
        if agg["engine"]["jobs_done"] == 0 and not agg["stages"]:
            problems.append("no stage spans and no completed jobs")
        if problems:
            print("obs report --smoke FAILED: " + "; ".join(problems),
                  file=sys.stderr)
            return 1
        print("obs report --smoke ok")
    return 0


def _cmd_explore(args) -> int:
    import json

    from repro.explore import run_sweep
    from repro.workloads import get_workload, workload_names

    if args.smoke:
        # CI gate: a tiny two-point sweep whose base point must price
        # bit-identically to the non-explore pipeline.
        workloads = ["triangle"]
        axes = ["num_sus=1,4"]
        scale = 0.3
    else:
        workloads = args.workload
        axes = list(args.axis)
        scale = args.scale
        if not workloads:
            print("choose at least one workload:", file=sys.stderr)
            for name in workload_names():
                print(f"  {name}", file=sys.stderr)
            return 2
        if not axes:
            print("pass at least one --axis FIELD=VALUES "
                  "(e.g. --axis num_sus=1,2,4,8,16)", file=sys.stderr)
            return 2

    datasets = {}
    for name in workloads:
        spec = get_workload(name)
        dataset = _dataset_for_args(spec, args)
        if dataset is not None:
            datasets[spec.name] = dataset

    from repro.perf.engine import default_workers

    report = run_sweep(workloads, axes, preset=args.preset,
                       datasets=datasets or None, scale=scale,
                       workers=args.jobs or default_workers(),
                       backend=args.backend)

    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render())

    if args.smoke:
        from repro.workloads import run_workload

        problems = []
        if not report.ok:
            problems.append(f"{len(report.failures)} job failure(s)")
        base = run_workload(get_workload("triangle"), None, scale).metrics
        sweep = report.workloads[0]
        row = next((r for r in sweep.rows
                    if dict(r["values"])["num_sus"] == 4), None)
        if row is None:
            problems.append("base point (num_sus=4) missing from sweep")
        else:
            for metric in ("sc_cycles", "cpu_cycles", "speedup_vs_cpu"):
                if row[metric] != base[metric]:
                    problems.append(
                        f"{metric} diverged from the non-explore "
                        f"pipeline: {row[metric]!r} != {base[metric]!r}")
        if report.cache["misses"] > len(workloads):
            problems.append(
                f"{report.cache['misses']} recording(s) for "
                f"{len(workloads)} workload(s) — sweep re-recorded")
        if problems:
            print("explore --smoke FAILED: " + "; ".join(problems),
                  file=sys.stderr)
            return 1
        print("explore --smoke ok: base point bit-identical, "
              f"cache hit rate {report.cache['hit_rate']:.1%}")
    return 0 if report.ok else 1


def _cmd_bench(args) -> int:
    import json

    from repro.perf.benchdiff import BenchSchemaError, diff_files

    try:
        diff = diff_files(args.old, args.new, tolerance=args.tolerance)
    except BenchSchemaError as exc:
        print(f"bench diff: schema error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(diff.to_json(), indent=2))
    else:
        print(diff.render())
    return diff.exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SparseCore (ASPLOS 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset registries")

    def add_backend_flag(p):
        p.add_argument("--backend", default=None,
                       choices=["rows", "columnar"],
                       help="recording backend (default: "
                            "$REPRO_RECORD_BACKEND or rows); both "
                            "produce byte-identical traces")

    run = sub.add_parser("run", help="run a GPM application")
    run.add_argument("app", choices=["T", "TS", "TC", "TT", "TM", "4C",
                                     "4CS", "5C", "5CS", "FSM"])
    run.add_argument("--graph", default="email_eu_core")
    run.add_argument("--scale", type=float, default=1.0)
    add_backend_flag(run)

    pattern = sub.add_parser("pattern", help="compile and run a pattern")
    pattern.add_argument("pattern",
                         help="triangle | three-chain | tailed-triangle | "
                              "k-clique | k-chain | k-star")
    pattern.add_argument("--graph", default="citeseer")
    pattern.add_argument("--scale", type=float, default=1.0)
    pattern.add_argument("--edge-induced", action="store_true")
    pattern.add_argument("--no-nested", action="store_true")

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", choices=["1", "2", "3", "4", "5"])

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", choices=[str(i) for i in range(7, 17)])
    figure.add_argument("--scale", type=float, default=1.0)

    spmspm = sub.add_parser("spmspm", help="run one spmspm dataflow")
    spmspm.add_argument("--matrix", default="laser")
    spmspm.add_argument("--dataflow", default="gustavson",
                        choices=["inner", "outer", "gustavson"])
    add_backend_flag(spmspm)

    difftest = sub.add_parser(
        "difftest", help="cross-backend differential conformance sweep")
    difftest.add_argument("--cases", type=int, default=200,
                          help="number of cases across all families")
    difftest.add_argument("--seed", type=int, default=0,
                          help="root seed of the sweep")
    difftest.add_argument("--smoke", action="store_true",
                          help="small sizes + fewer cases (CI budget)")
    difftest.add_argument("--family",
                          choices=["stream", "gpm", "tensor"],
                          help="restrict the sweep to one family")
    difftest.add_argument("--case-seed", type=int, default=None,
                          help="re-run one case from its printed seed")
    difftest.add_argument("--self-check", action="store_true",
                          help="verify the harness catches a planted bug")
    difftest.add_argument("--json", action="store_true",
                          help="emit the sweep report as JSON")

    profile = sub.add_parser(
        "profile", help="profile a workload with counters/trace/attribution")
    profile.add_argument("workload", nargs="*", default=[],
                         help="GPM patterns or tensor kernels "
                              "(run without arguments for the list; "
                              "several names fan out over --jobs)")
    profile.add_argument("--jobs", type=int, default=None,
                         help="worker processes for multi-workload runs "
                              "(default: $REPRO_WORKERS or 1)")
    profile.add_argument("--graph", default="citeseer",
                         help="graph dataset for GPM workloads")
    profile.add_argument("--matrix", default="laser",
                         help="matrix dataset for spmspm workloads")
    profile.add_argument("--tensor", default="Ch",
                         help="tensor dataset for ttv/ttm workloads")
    profile.add_argument("--scale", type=float, default=1.0,
                         help="graph scale factor")
    profile.add_argument("--max-events", type=int, default=200_000,
                         help="tracer retention cap (overflow is counted)")
    profile.add_argument("--json", action="store_true",
                         help="emit the full profile as JSON")
    profile.add_argument("--trace", metavar="FILE",
                         help="write Chrome trace-event JSON (Perfetto)")
    profile.add_argument("--timeline", action="store_true",
                         help="print the plain-text event timeline")
    profile.add_argument("--smoke", action="store_true",
                         help="profile the CI pair (triangle + spmspm) "
                              "with attribution/schema checks enforced")
    add_backend_flag(profile)

    cache = sub.add_parser(
        "cache", help="manage the persistent run cache")
    cache.add_argument("action", choices=["stats", "prewarm", "fsck",
                                          "clear"])
    cache.add_argument("--dir", default=None,
                       help="cache root (default: $REPRO_CACHE_DIR or "
                            "~/.cache/repro-sparsecore/runs)")
    cache.add_argument("--jobs", type=int, default=None,
                       help="worker processes for prewarm "
                            "(default: $REPRO_WORKERS or 1)")
    cache.add_argument("--scale", type=float, default=1.0,
                       help="figure-suite scale for prewarm")
    cache.add_argument("--smoke", action="store_true",
                       help="prewarm a small representative job set")
    cache.add_argument("--verbose", action="store_true",
                       help="list individual entries under stats")
    cache.add_argument("--json", action="store_true",
                       help="emit stats/fsck output as JSON")
    add_backend_flag(cache)

    chaos = sub.add_parser(
        "chaos", help="fault-injection gate over the figure suite")
    chaos.add_argument("--smoke", action="store_true",
                       help="chaos-test the small smoke suite (CI)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="seed of the derived fault plan")
    chaos.add_argument("--scale", type=float, default=1.0,
                       help="figure-suite scale factor")
    chaos.add_argument("--jobs", type=int, default=2,
                       help="worker processes (>= 2 exercises the pool "
                            "crash/hang paths)")
    chaos.add_argument("--timeout", type=float, default=30.0,
                       help="per-job timeout under faults (the hang "
                            "fault must exceed it)")
    chaos.add_argument("--max-jobs", type=int, default=None,
                       help="trim the job list (faster local runs)")
    chaos.add_argument("--json", action="store_true",
                       help="emit the chaos report as JSON")

    workloads = sub.add_parser(
        "workloads", help="list the unified workload registry")
    workloads.add_argument("--list", action="store_true",
                           help="print bare workload names only")

    obs = sub.add_parser(
        "obs", help="aggregate or export the persistent run ledger")
    obs.add_argument("action", choices=["report", "trace"])
    obs.add_argument("out", nargs="?", default=None,
                     help="output file for trace (default "
                          "ledger_trace.json)")
    obs.add_argument("--dir", default=None,
                     help="ledger directory (default: $REPRO_LEDGER_DIR)")
    obs.add_argument("--json", action="store_true",
                     help="emit the aggregated report as JSON")
    obs.add_argument("--smoke", action="store_true",
                     help="CI gate: exit 1 if the ledger is empty or "
                          "malformed")
    obs.add_argument("--top", type=int, default=8,
                     help="rows in the slowest-jobs table")

    explore = sub.add_parser(
        "explore", help="design-space sweep over machine configurations")
    explore.add_argument("workload", nargs="*", default=[],
                         help="workloads to sweep (run without arguments "
                              "for the list)")
    explore.add_argument("--axis", action="append", default=[],
                         metavar="FIELD=VALUES",
                         help="one swept config field: num_sus=1,2,4,8,16 "
                              "| scache_bandwidth=2..64 (doubling) | "
                              "num_sus=2..8:2 (arithmetic); repeat for a "
                              "grid")
    explore.add_argument("--preset", default="paper",
                         help="base machine preset (default: paper = "
                              "Table 2)")
    explore.add_argument("--scale", type=float, default=1.0,
                         help="graph scale factor")
    explore.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: $REPRO_WORKERS "
                              "or 1)")
    explore.add_argument("--graph", default=None,
                         help="graph dataset for GPM workloads")
    explore.add_argument("--matrix", default=None,
                         help="matrix dataset for spmspm workloads")
    explore.add_argument("--tensor", default=None,
                         help="tensor dataset for ttv/ttm workloads")
    explore.add_argument("--json", action="store_true",
                         help="emit the sweep report as JSON")
    explore.add_argument("--smoke", action="store_true",
                         help="CI gate: 2-point sweep; the base point "
                              "must match the non-explore pipeline "
                              "bit-for-bit")
    add_backend_flag(explore)

    bench = sub.add_parser(
        "bench", help="compare two benchmark reports for regressions")
    bench.add_argument("action", choices=["diff"])
    bench.add_argument("old", help="baseline report JSON")
    bench.add_argument("new", help="candidate report JSON")
    bench.add_argument("--tolerance", type=float, default=0.25,
                       help="relative regression tolerance "
                            "(default 0.25 = 25%%)")
    bench.add_argument("--json", action="store_true",
                       help="emit the diff as JSON")
    return parser


_COMMANDS = {
    "datasets": _cmd_datasets,
    "run": _cmd_run,
    "pattern": _cmd_pattern,
    "table": _cmd_table,
    "figure": _cmd_figure,
    "spmspm": _cmd_spmspm,
    "difftest": _cmd_difftest,
    "profile": _cmd_profile,
    "cache": _cmd_cache,
    "chaos": _cmd_chaos,
    "workloads": _cmd_workloads,
    "obs": _cmd_obs,
    "explore": _cmd_explore,
    "bench": _cmd_bench,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.errors import ConfigError, DatasetError

    try:
        return _COMMANDS[args.command](args)
    except (ConfigError, DatasetError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
